(* Mutation smoke test for the conformance oracle: a deliberately broken
   algorithm is injected through [Check_engine.run ~algos] and the
   harness must (1) report the planted bug, (2) shrink the counterexample,
   (3) persist a corpus file whose replay still reproduces the bug. *)

open Omflp_prelude
open Omflp_instance
open Omflp_core
open Omflp_check

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The mutant: behaves exactly like INDEP but under-reports its
   construction cost by half. [Simulator.validate] recomputes costs from
   the decisions, so every instance with a positive cost exposes it. *)
module Broken_cost : Algo_intf.ALGO = struct
  type t = Indep_baseline.t

  let name = "BROKEN-COST"
  let family = Indep_baseline.family
  let create = Indep_baseline.create
  let step = Indep_baseline.step
  let step_batch = Indep_baseline.step_batch

  let run_so_far t =
    let run = Indep_baseline.run_so_far t in
    {
      run with
      Run.algorithm = name;
      construction_cost = run.Run.construction_cost *. 0.5;
    }

  let store = Indep_baseline.store
  let snapshot = Indep_baseline.snapshot
  let restore = Indep_baseline.restore
end

let mutant = [ ("BROKEN-COST", (module Broken_cost : Algo_intf.ALGO)) ]

let with_pool f =
  let pool = Pool.create ~jobs:2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* Scenario 0 of this seed must have a positive construction cost for the
   mutant to be caught there; any seed works because INDEP always opens a
   facility for the first request and all generated costs are positive. *)
let seed = 2024

let test_honest_algorithms_pass () =
  with_pool @@ fun pool ->
  let report =
    Check_engine.run ~pool ~corpus_dir:None ~determinism_sample:2 ~budget:5
      ~seed ()
  in
  check_int "scenarios" 5 report.Check_engine.scenarios;
  check_int "no replays without a corpus" 0 report.Check_engine.replays;
  check_int "honest algorithms produce no findings" 0
    (List.length report.Check_engine.findings)

let with_temp_corpus f =
  (* A corpus directory outside the source tree, removed afterwards even
     when the test runs from the repo root via [dune exec]. *)
  let dir = Filename.temp_file "omflp-mutant" ".corpus" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_mutant_is_caught () =
  with_temp_corpus @@ fun dir ->
  with_pool @@ fun pool ->
  let report =
    Check_engine.run ~pool ~algos:mutant ~corpus_dir:(Some dir)
      ~determinism_sample:0 ~budget:2 ~seed ()
  in
  check_bool "planted bug reported" true
    (report.Check_engine.findings <> []);
  let f =
    List.find
      (fun (f : Check_engine.finding) ->
        f.violation.Oracle.algo = "BROKEN-COST"
        && f.violation.Oracle.check = "feasible")
      report.Check_engine.findings
  in
  (* The counterexample was shrunk to something minimal: INDEP's cost is
     already positive after one request, so one request suffices. *)
  let shrunk = Option.get f.instance in
  check_bool "shrinking made progress" true (f.shrink_steps > 0);
  check_int "shrunk to a single request" 1
    (Array.length shrunk.Instance.requests);
  (* The corpus file replays: loading it back and re-running the oracle
     reproduces the same violation. *)
  let path = Option.get f.replay_path in
  let reloaded = Serial.load_file path in
  let violations = Oracle.check_instance ~algos:mutant ~seed:0 reloaded in
  check_bool "replayed corpus file reproduces the bug" true
    (List.exists
       (fun (v : Oracle.violation) ->
         v.Oracle.algo = "BROKEN-COST" && v.Oracle.check = "feasible")
       violations);
  (* A later engine invocation replays the corpus first and reports the
     persisted failure even with a zero fuzzing budget. *)
  let replayed =
    Check_engine.run ~pool ~algos:mutant ~corpus_dir:(Some dir)
      ~determinism_sample:0 ~budget:0 ~seed ()
  in
  check_bool "corpus replay re-reports the bug" true
    (List.exists
       (fun (f : Check_engine.finding) ->
         f.replay_path <> None
         && f.violation.Oracle.algo = "BROKEN-COST"
         && f.violation.Oracle.check = "feasible")
       replayed.Check_engine.findings)

let test_corpus_rejects_truncated () =
  (* Corpus files are written atomically (temp + rename), so a torn file
     can only come from outside — and the loader must reject it with the
     serializer's named error instead of replaying garbage. *)
  with_temp_corpus @@ fun dir ->
  let sc = Scenario.generate ~master_seed:seed ~index:1 () in
  let path = Corpus.save ~dir ~slug:"truncated" sc.Scenario.instance in
  check_int "no temp-file litter next to the corpus file" 1
    (Array.length (Sys.readdir dir));
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let prefix = really_input_string ic (len / 2) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc prefix;
  close_out oc;
  match Corpus.load_all ~dir with
  | [ (p, Error msg) ] ->
      check_bool "same path" true (p = path);
      check_bool "named Serial.load error" true
        (String.length msg >= 11 && String.sub msg 0 11 = "Serial.load")
  | [ (_, Ok _) ] -> Alcotest.fail "truncated corpus file was accepted"
  | entries ->
      Alcotest.failf "expected exactly one corpus entry, got %d"
        (List.length entries)

let test_oracle_reports_instead_of_raising () =
  (* An algorithm that raises mid-run must surface as a ["run"] violation,
     not as an exception out of the checker. *)
  let module Crasher : Algo_intf.ALGO = struct
    type t = Facility_store.t

    let name = "CRASHER"
    let family = Problem_env.Family.Omflp

    let create ?seed:_ env =
      Facility_store.create env
        ~n_commodities:
          (Omflp_commodity.Cost_function.n_commodities (Problem_env.cost env))

    let step _ _ = failwith "boom"
    let step_batch t reqs = Algo_intf.batch_of_step ~step t reqs
    let run_so_far _ = Alcotest.fail "unreachable"
    let store t = t
    let snapshot _ = failwith "CRASHER has no snapshot"
    let restore _ _ = failwith "CRASHER has no restore"
  end in
  let sc = Scenario.generate ~master_seed:seed ~index:0 () in
  let violations =
    Oracle.check_instance
      ~algos:[ ("CRASHER", (module Crasher : Algo_intf.ALGO)) ]
      ~seed:0 sc.Scenario.instance
  in
  check_bool "exception became a run violation" true
    (List.exists
       (fun (v : Oracle.violation) ->
         v.Oracle.check = "run" && v.Oracle.algo = "CRASHER")
       violations)

let test_oracle_family_mismatch_is_named () =
  (* Handing the oracle an algorithm from the wrong problem family must
     yield a named ["family-mismatch"] violation — it never crashes
     mid-run and never silently runs the algorithm anyway. *)
  let sc = Scenario.generate ~master_seed:seed ~index:0 () in
  let violations =
    Oracle.check_instance
      ~algos:[ ("NONMETRIC-BF", (module Nonmetric_bf : Algo_intf.ALGO)) ]
      ~seed:0 sc.Scenario.instance
  in
  check_bool "mismatch became a named violation" true
    (List.exists
       (fun (v : Oracle.violation) ->
         v.Oracle.check = "family-mismatch"
         && v.Oracle.algo = "NONMETRIC-BF"
         && v.Oracle.detail
            = "family mismatch: algorithm NONMETRIC-BF serves the \
               nonmetric-fl family but the environment is omflp")
       violations)

(* ---------- Arrival axis ---------- *)

let forced_models =
  [ (`Adversarial, "adv"); (`Random_order, "ro"); (`Iid, "iid") ]

let test_scenario_pure () =
  (* [generate] is a pure function of (master_seed, index): two calls
     yield identical scenarios and never share a mutable request array
     (regression for the old in-place reorder shuffle). *)
  List.iter
    (fun index ->
      let a = Scenario.generate ~master_seed:seed ~index () in
      let b = Scenario.generate ~master_seed:seed ~index () in
      check_bool "labels equal" true (a.Scenario.label = b.Scenario.label);
      check_int "algo seeds equal" a.Scenario.algo_seed b.Scenario.algo_seed;
      check_bool "requests equal" true
        (a.Scenario.instance.Instance.requests
        = b.Scenario.instance.Instance.requests);
      check_bool "request arrays not aliased" true
        (a.Scenario.instance.Instance.requests
        != b.Scenario.instance.Instance.requests))
    [ 0; 1; 2; 5; 7 ]

let test_forced_arrival_models () =
  (* Forcing restricts the order treatment to one model and must leave
     the instance family and algo seed of each index untouched (the
     scenario stream consumes its RNG draws unconditionally). *)
  List.iter
    (fun (forced, tag) ->
      for index = 0 to 11 do
        let sc =
          Scenario.generate ~arrival:forced ~master_seed:seed ~index ()
        in
        let base = Scenario.generate ~master_seed:seed ~index () in
        check_bool
          (Printf.sprintf "i%d forced model is %s" index tag)
          true
          (Arrival.model_tag sc.Scenario.instance.Instance.arrival = tag);
        check_int "forcing keeps algo_seed" base.Scenario.algo_seed
          sc.Scenario.algo_seed;
        check_int "forcing keeps sites"
          (Instance.n_sites base.Scenario.instance)
          (Instance.n_sites sc.Scenario.instance);
        check_int "forcing keeps commodities"
          (Instance.n_commodities base.Scenario.instance)
          (Instance.n_commodities sc.Scenario.instance)
      done)
    forced_models

let test_corpus_slug_records_model () =
  (* A finding on a forced random-order stream must persist with the
     model tag in the slug and the arrival line in the .inst file, so
     the replayed corpus entry re-runs the exact materialized order. *)
  with_temp_corpus @@ fun dir ->
  with_pool @@ fun pool ->
  let report =
    Check_engine.run ~pool ~algos:mutant ~corpus_dir:(Some dir) ~shrink:false
      ~determinism_sample:0 ~arrival:`Random_order ~budget:2 ~seed ()
  in
  check_bool "planted bug reported" true (report.Check_engine.findings <> []);
  List.iter
    (fun (f : Check_engine.finding) ->
      let path = Option.get f.replay_path in
      let contains_ro =
        let base = Filename.basename path in
        let needle = "-ro-" in
        let n = String.length needle and l = String.length base in
        let rec scan i =
          i + n <= l && (String.sub base i n = needle || scan (i + 1))
        in
        scan 0
      in
      check_bool "slug carries the model tag" true contains_ro;
      let reloaded = Serial.load_file path in
      let original = Option.get f.instance in
      check_bool "arrival survives the corpus round trip" true
        (reloaded.Instance.arrival = original.Instance.arrival);
      check_bool "materialized order survives the corpus round trip" true
        (reloaded.Instance.requests = original.Instance.requests))
    report.Check_engine.findings

let test_ro_jobs_determinism () =
  (* Same-seed random-order scenarios must produce byte-identical run
     digests under pools of different sizes — the jobs=1 vs jobs=N
     contract extended to the new arrival axis. *)
  let digest_of index =
    let sc =
      Scenario.generate ~arrival:`Random_order ~master_seed:seed ~index ()
    in
    String.concat "\n"
      (List.map
         (fun (_, algo) ->
           Oracle.run_digest
             (Simulator.run ~seed:sc.Scenario.algo_seed ~check:false algo
                sc.Scenario.instance))
         (Registry.of_family (Instance.family sc.Scenario.instance)))
  in
  let indices = Array.init 6 Fun.id in
  let under_jobs jobs =
    let pool = Pool.create ~jobs in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map pool digest_of indices)
  in
  let one = under_jobs 1 and three = under_jobs 3 in
  Array.iteri
    (fun i d ->
      check_bool (Printf.sprintf "digest %d identical" i) true (d = three.(i)))
    one

let () =
  Alcotest.run "check"
    [
      ( "mutation",
        [
          Alcotest.test_case "honest algorithms pass" `Quick
            test_honest_algorithms_pass;
          Alcotest.test_case "planted bug is caught, shrunk, replayable"
            `Quick test_mutant_is_caught;
          Alcotest.test_case "family mismatch becomes a named violation"
            `Quick test_oracle_family_mismatch_is_named;
          Alcotest.test_case "algorithm exception becomes a finding" `Quick
            test_oracle_reports_instead_of_raising;
          Alcotest.test_case "truncated corpus file rejected" `Quick
            test_corpus_rejects_truncated;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "scenario generation is pure" `Quick
            test_scenario_pure;
          Alcotest.test_case "forced models, invariant family" `Quick
            test_forced_arrival_models;
          Alcotest.test_case "corpus slug records the model" `Quick
            test_corpus_slug_records_model;
          Alcotest.test_case "random-order jobs=1 = jobs=3" `Quick
            test_ro_jobs_determinism;
        ] );
    ]
