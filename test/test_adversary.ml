open Omflp_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_shape () =
  let outcome = Adversary.zoom_line ~levels:4 (module Pd_omflp) in
  let inst = outcome.Adversary.realized in
  (* batch_base * (2^0 + ... + 2^3) + final batch_base * 2^4 = 2*15 + 32 = 62 *)
  check_int "request count" 62 (Omflp_instance.Instance.n_requests inst);
  check_int "dyadic points" 17 (Omflp_instance.Instance.n_sites inst);
  check_bool "zoom point in range" true
    (outcome.Adversary.zoom_point >= 0 && outcome.Adversary.zoom_point < 17)

let test_realized_instance_replays () =
  (* The realized sequence fed back to the same (deterministic) algorithm
     reproduces the adversarial run exactly. *)
  let outcome = Adversary.zoom_line ~levels:5 (module Pd_omflp) in
  let replay = Simulator.run (module Pd_omflp) outcome.Adversary.realized in
  Alcotest.(check (float 1e-9))
    "same cost"
    (Run.total_cost outcome.Adversary.run)
    (Run.total_cost replay)

let test_run_validates () =
  List.iter
    (fun (name, algo) ->
      let outcome = Adversary.zoom_line ~levels:4 ~seed:3 algo in
      match Simulator.validate outcome.Adversary.realized outcome.Adversary.run with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    (Registry.of_family Omflp_instance.Problem_env.Family.Omflp)

let test_adversary_hurts_greedy () =
  (* The zoom construction defeats the non-competitive GREEDY badly. *)
  let outcome = Adversary.zoom_line ~levels:6 (module Greedy_baseline) in
  let bracket =
    Omflp_offline.Opt_estimate.bracket ~exact:false ~local_search:false
      outcome.Adversary.realized
  in
  let ratio =
    Run.total_cost outcome.Adversary.run
    /. bracket.Omflp_offline.Opt_estimate.upper
  in
  check_bool "ratio blows up" true (ratio > 5.0)

let test_pd_stays_modest () =
  let outcome = Adversary.zoom_line ~levels:6 (module Pd_omflp) in
  let bracket =
    Omflp_offline.Opt_estimate.bracket ~exact:false ~local_search:false
      outcome.Adversary.realized
  in
  let ratio =
    Run.total_cost outcome.Adversary.run
    /. bracket.Omflp_offline.Opt_estimate.upper
  in
  (* O(log n) with small constants: levels = 6 gives ample headroom. *)
  check_bool "ratio stays O(log n)" true (ratio < 6.0)

let test_validation () =
  Alcotest.check_raises "levels range"
    (Invalid_argument "Adversary.zoom_line: levels must lie in [1, 14]")
    (fun () -> ignore (Adversary.zoom_line ~levels:0 (module Pd_omflp)));
  Alcotest.check_raises "cost positive"
    (Invalid_argument "Adversary.zoom_line: facility cost must be positive")
    (fun () ->
      ignore
        (Adversary.zoom_line ~levels:3 ~facility_cost:0.0 (module Pd_omflp)))

let () =
  Alcotest.run "adversary"
    [
      ( "zoom_line",
        [
          Alcotest.test_case "shape" `Quick test_shape;
          Alcotest.test_case "realized replays" `Quick test_realized_instance_replays;
          Alcotest.test_case "all runs validate" `Quick test_run_validates;
          Alcotest.test_case "hurts greedy" `Quick test_adversary_hurts_greedy;
          Alcotest.test_case "pd stays modest" `Quick test_pd_stays_modest;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
