open Omflp_prelude
open Omflp_experiments

let check_float tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    if i + n > String.length haystack then false
    else if String.sub haystack i n = needle then true
    else go (i + 1)
  in
  go 0

(* ---------- E2 closed-form values (Figure 2) ---------- *)

let test_e2_endpoints () =
  let s = 10_000 in
  (* x = 0 and x = 2: both factors are 1 (the OFLP regime). *)
  check_float 1e-9 "upper x=0" 1.0 (Exp_bounds_curve.upper_factor ~n_commodities:s ~x:0.0);
  check_float 1e-9 "upper x=2" 1.0 (Exp_bounds_curve.upper_factor ~n_commodities:s ~x:2.0);
  check_float 1e-9 "lower x=0" 1.0 (Exp_bounds_curve.lower_factor ~n_commodities:s ~x:0.0);
  check_float 1e-9 "lower x=2" 1.0 (Exp_bounds_curve.lower_factor ~n_commodities:s ~x:2.0)

let test_e2_peak () =
  let s = 10_000 in
  (* Peak 4th root of |S| = 10 at x = 1, where both curves meet. *)
  check_float 1e-9 "upper x=1" 10.0 (Exp_bounds_curve.upper_factor ~n_commodities:s ~x:1.0);
  check_float 1e-9 "lower x=1" 10.0 (Exp_bounds_curve.lower_factor ~n_commodities:s ~x:1.0)

let test_e2_upper_dominates () =
  let s = 10_000 in
  for i = 0 to 40 do
    let x = 2.0 *. float_of_int i /. 40.0 in
    check_bool
      (Printf.sprintf "x=%.2f" x)
      true
      (Exp_bounds_curve.upper_factor ~n_commodities:s ~x
       >= Exp_bounds_curve.lower_factor ~n_commodities:s ~x -. 1e-9)
  done

let test_e2_symmetry () =
  let s = 10_000 in
  (* Both curves are symmetric around x = 1. *)
  List.iter
    (fun x ->
      check_float 1e-9 "upper symmetric"
        (Exp_bounds_curve.upper_factor ~n_commodities:s ~x)
        (Exp_bounds_curve.upper_factor ~n_commodities:s ~x:(2.0 -. x));
      check_float 1e-9 "lower symmetric"
        (Exp_bounds_curve.lower_factor ~n_commodities:s ~x)
        (Exp_bounds_curve.lower_factor ~n_commodities:s ~x:(2.0 -. x)))
    [ 0.0; 0.3; 0.7; 1.0 ]

let test_e2_section () =
  let section =
    Exp_bounds_curve.run_spec
      (Exp_common.Spec.make ~n_commodities:10_000 ~steps:10 "e2")
  in
  let rendered = Texttable.render section.Exp_common.table in
  check_bool "has peak row" true (contains rendered "1.00");
  check_bool "titled" true (contains section.Exp_common.title "Figure 2")

(* ---------- Experiment smoke runs (minimal sizes) ---------- *)

let test_e1_smoke () =
  let section =
    Exp_lower_bound.run_spec
      (Exp_common.Spec.make ~reps:2 ~sizes:[ 16 ] ~seed:1 "e1")
  in
  let rendered = Texttable.render section.Exp_common.table in
  check_bool "mentions PD" true (contains rendered "PD-OMFLP");
  check_bool "mentions both regimes" true
    (contains rendered "|S'|=sqrt|S|" && contains rendered "|S'|=|S|")

let test_e3_smoke () =
  let section =
    Exp_cost_sweep.run_spec
      (Exp_common.Spec.make ~reps:2 ~n_commodities:16 ~xs:[ 0.0; 1.0; 2.0 ]
         ~seed:1 "e3")
  in
  check_bool "has rows" true
    (contains (Texttable.render section.Exp_common.table) "RAND-OMFLP")

let test_e4_smoke () =
  let section =
    Exp_scaling_n.run_spec
      (Exp_common.Spec.make ~reps:1 ~sizes:[ 20; 40 ] ~n_commodities:4 ~seed:1
         "e4")
  in
  check_bool "has rows" true
    (contains (Texttable.render section.Exp_common.table) "INDEP")

let test_e5_smoke () =
  let section =
    Exp_algorithms_table.run_spec
      (Exp_common.Spec.make ~reps:1 ~quick:true ~seed:1 "e5")
  in
  check_bool "has all families" true
    (let r = Texttable.render section.Exp_common.table in
     contains r "line" && contains r "clustered" && contains r "network")

let test_e6_smoke () =
  let section =
    Exp_ablation.run_spec (Exp_common.Spec.make ~reps:1 ~seed:1 "e6")
  in
  check_bool "has all costs" true
    (let r = Texttable.render section.Exp_common.table in
     contains r "linear" && contains r "sqrt" && contains r "constant")

let test_e8_smoke () =
  let section =
    Exp_heavy.run_spec
      (Exp_common.Spec.make ~reps:1 ~xs:[ 0.0; 10.0 ] ~seed:1 "e8")
  in
  check_bool "has heavy-aware rows" true
    (contains (Texttable.render section.Exp_common.table) "HEAVY-AWARE")

let test_e9_smoke () =
  let section =
    Exp_model_transform.run_spec (Exp_common.Spec.make ~reps:1 ~seed:1 "e9")
  in
  check_bool "has inflation column" true
    (contains (Texttable.render section.Exp_common.table) "PD-OMFLP")

let test_e10_smoke () =
  let section =
    Exp_adversarial.run_spec
      (Exp_common.Spec.make ~sizes:[ 3 ] ~seed:1 "e10")
  in
  check_bool "has rows" true
    (contains (Texttable.render section.Exp_common.table) "GREEDY")

let test_e11_smoke () =
  let section =
    Exp_arrival.run_spec (Exp_common.Spec.make ~quick:true ~reps:2 "e11")
  in
  let rendered = Texttable.render section.Exp_common.table in
  (* Every arrival model and every OMFLP-family algorithm must show up
     as rows — the per-model ratio table is E11's contract. *)
  List.iter
    (fun needle -> check_bool needle true (contains rendered needle))
    [ "adversarial"; "random-order"; "iid"; "zoom-line"; "clustered" ];
  List.iter
    (fun (name, _) -> check_bool name true (contains rendered name))
    (Omflp_core.Registry.of_family Omflp_instance.Problem_env.Family.Omflp)

let test_suite_dispatch () =
  check_int "ten experiments" 10 (List.length Suite.ids);
  Alcotest.check_raises "unknown id" (Invalid_argument "unknown experiment id \"e12\"")
    (fun () -> ignore (Suite.run ~quick:true ~which:"e12" ()));
  check_int "single" 1 (List.length (Suite.run ~quick:true ~which:"e2" ()))

(* ---------- Export ---------- *)

let test_csv_string () =
  let section =
    Exp_bounds_curve.run_spec
      (Exp_common.Spec.make ~n_commodities:100 ~steps:2 "e2")
  in
  let csv = Export.csv_string section in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 3 rows" 4 (List.length lines);
  (* The lower-bound header contains a comma and must be quoted. *)
  check_bool "quoted header" true (contains (List.hd lines) "\"lower:")

let test_csv_escaping () =
  let t = Texttable.create [ "a"; "b" ] in
  Texttable.add_row t [ "plain"; "has,comma" ];
  Texttable.add_row t [ "has\"quote"; "fine" ];
  let section = { Exp_common.title = "x"; notes = []; table = t } in
  let csv = Export.csv_string section in
  check_bool "comma quoted" true (contains csv "\"has,comma\"");
  check_bool "quote doubled" true (contains csv "\"has\"\"quote\"")

let test_slug () =
  Alcotest.(check string)
    "slug" "e2-figure-2-bound-curves-s-10000"
    (Export.slug "E2: Figure 2 bound curves (|S| = 10000)");
  Alcotest.(check string) "empty" "section" (Export.slug "!!!")

let test_write_csv () =
  let dir = Filename.temp_file "omflp" "" in
  Sys.remove dir;
  let section =
    Exp_bounds_curve.run_spec
      (Exp_common.Spec.make ~n_commodities:100 ~steps:2 "e2")
  in
  let path = Export.write_csv ~dir section in
  check_bool "file exists" true (Sys.file_exists path);
  let content = In_channel.with_open_text path In_channel.input_all in
  check_bool "has data" true (String.length content > 20);
  Sys.remove path;
  Sys.rmdir dir

(* ---------- Exp_common.measure ---------- *)

let test_measure_shapes () =
  let outcome =
    Exp_common.measure ~reps:2 ~seed:3
      ~gen:(fun rng -> Omflp_instance.Generators.theorem2 rng ~n_commodities:16)
      ~algos:(Exp_common.default_algos ())
      ()
  in
  check_int "five measurements" 5 (List.length outcome.Exp_common.measurements);
  List.iter
    (fun (m : Exp_common.measurement) ->
      check_int "reps" 2 (Array.length m.costs);
      Array.iter (fun c -> check_bool "cost > 0" true (c > 0.0)) m.costs;
      Array.iter (fun r -> check_bool "ratio >= 1" true (r >= 1.0 -. 1e-6)) m.ratios_vs_upper)
    outcome.Exp_common.measurements

let test_method_label () =
  Alcotest.(check string) "empty" "" (Exp_common.method_label [||]);
  Alcotest.(check string) "unanimous" "greedy" (Exp_common.method_label [| "greedy"; "greedy" |]);
  Alcotest.(check string)
    "mixed, first-occurrence order" "mixed(ilp|greedy)"
    (Exp_common.method_label [| "ilp"; "greedy"; "ilp"; "greedy" |])

(* ---------- determinism contract: jobs=1 == jobs=N ---------- *)

(* The tentpole guarantee: every repetition derives its RNGs from
   (seed, rep), so fanning reps/experiments across domains must yield
   bit-for-bit the numbers — and byte-for-byte the rendered tables —
   that the serial path yields. *)

let with_jobs jobs f =
  let pool = Omflp_prelude.Pool.create ~jobs in
  Fun.protect
    ~finally:(fun () -> Omflp_prelude.Pool.shutdown pool)
    (fun () -> f pool)

let test_measure_jobs_determinism () =
  let run pool =
    Exp_common.measure ~pool ~reps:4 ~seed:7
      ~gen:(fun rng ->
        Omflp_instance.Generators.clustered rng ~clusters:2 ~per_cluster:3
          ~n_requests:12 ~n_commodities:5 ~side:50.0 ~spread:2.0
          ~cost:(fun ~n_commodities ~n_sites ->
            Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites
              ~x:1.0))
      ~algos:(Exp_common.default_algos ())
      ()
  in
  let serial = with_jobs 1 run in
  let parallel = with_jobs 4 run in
  check_bool "outcome bit-identical across jobs" true (serial = parallel)

let render_section (s : Exp_common.section) =
  String.concat "\n" (s.Exp_common.title :: s.Exp_common.notes)
  ^ "\n" ^ Texttable.render s.Exp_common.table

let test_suite_jobs_determinism () =
  let run pool = Suite.run ~pool ~quick:true ~which:"all" () in
  let serial = List.map render_section (with_jobs 1 run) in
  let parallel = List.map render_section (with_jobs 4 run) in
  Alcotest.(check (list string)) "rendered sections byte-identical" serial parallel

(* ---------- golden files: printed tables are pinned byte-for-byte ---------- *)

(* The suite's stdout is part of the repo's contract (tables are quoted
   in the paper write-up); these goldens pin the serial [--jobs 1]
   rendering exactly. Regenerate deliberately with
   [omflp exp --quick --which e1 -j 1 > test/golden/e1_quick.txt] (and
   analogously for e2) after an intentional output change. *)
let golden_check ~golden ~quick ~which () =
  let sections = with_jobs 1 (fun pool -> Suite.run ~pool ~quick ~which ()) in
  let rendered =
    String.concat "" (List.map Exp_common.section_to_string sections)
  in
  (* [dune runtest] runs in test/, [dune exec test/...] in the root. *)
  let path =
    if Sys.file_exists golden then golden else Filename.concat "test" golden
  in
  let expected = In_channel.with_open_text path In_channel.input_all in
  Alcotest.(check string) (golden ^ " matches") expected rendered

let test_golden_e1_quick =
  golden_check ~golden:"golden/e1_quick.txt" ~quick:true ~which:"e1"

let test_golden_e2 = golden_check ~golden:"golden/e2.txt" ~quick:false ~which:"e2"

let test_measure_validates_reps () =
  Alcotest.check_raises "reps" (Invalid_argument "Exp_common.measure: reps must be positive")
    (fun () ->
      ignore
        (Exp_common.measure ~reps:0 ~seed:1
           ~gen:(fun rng -> Omflp_instance.Generators.theorem2 rng ~n_commodities:16)
           ~algos:[] ()))

let () =
  Alcotest.run "experiments"
    [
      ( "figure2",
        [
          Alcotest.test_case "endpoints" `Quick test_e2_endpoints;
          Alcotest.test_case "peak" `Quick test_e2_peak;
          Alcotest.test_case "upper dominates lower" `Quick test_e2_upper_dominates;
          Alcotest.test_case "symmetry" `Quick test_e2_symmetry;
          Alcotest.test_case "section" `Quick test_e2_section;
        ] );
      ( "smoke",
        [
          Alcotest.test_case "e1" `Slow test_e1_smoke;
          Alcotest.test_case "e3" `Slow test_e3_smoke;
          Alcotest.test_case "e4" `Slow test_e4_smoke;
          Alcotest.test_case "e5" `Slow test_e5_smoke;
          Alcotest.test_case "e6" `Slow test_e6_smoke;
          Alcotest.test_case "e8" `Slow test_e8_smoke;
          Alcotest.test_case "e9" `Slow test_e9_smoke;
          Alcotest.test_case "e10" `Slow test_e10_smoke;
          Alcotest.test_case "e11" `Slow test_e11_smoke;
          Alcotest.test_case "suite dispatch" `Quick test_suite_dispatch;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv string" `Quick test_csv_string;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "slug" `Quick test_slug;
          Alcotest.test_case "write csv" `Quick test_write_csv;
        ] );
      ( "measure",
        [
          Alcotest.test_case "shapes" `Quick test_measure_shapes;
          Alcotest.test_case "validates reps" `Quick test_measure_validates_reps;
          Alcotest.test_case "method label" `Quick test_method_label;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "measure: jobs=1 = jobs=4" `Quick
            test_measure_jobs_determinism;
          Alcotest.test_case "suite: jobs=1 = jobs=4" `Slow
            test_suite_jobs_determinism;
        ] );
      ( "golden",
        [
          Alcotest.test_case "e1 quick table pinned" `Quick test_golden_e1_quick;
          Alcotest.test_case "e2 table pinned" `Quick test_golden_e2;
        ] );
    ]
