(* Serving-layer tests: the byte-identical kill/resume contract at every
   interruption point for every registered algorithm (pinned against the
   golden run digests), the JSONL wire format, and the checkpoint
   directory's durability invariants (WAL ahead of decisions, torn-tail
   truncation, snapshot integrity, named corruption errors). *)

open Omflp_instance
open Omflp_core
open Omflp_serve

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let master_seed = 0xD16E57

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let scenario index =
  let sc = Omflp_check.Scenario.golden ~master_seed ~index in
  (sc.Omflp_check.Scenario.instance, sc.Omflp_check.Scenario.algo_seed)

(* The fixture/golden scenario each family is pinned on — must mirror
   tools/gen_snapshot_fixtures.ml. *)
let family_index = function
  | Problem_env.Family.Omflp -> 0
  | Problem_env.Family.Nonmetric_fl -> 30
  | Problem_env.Family.Multi_facility_leasing -> 33

let load_golden () =
  let golden = "golden/run_digests.txt" in
  let path =
    if Sys.file_exists golden then golden else Filename.concat "test" golden
  in
  let tbl = Hashtbl.create 256 in
  In_channel.with_open_text path In_channel.input_lines
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.iter (fun line ->
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [ idx; name; md5 ] ->
             Hashtbl.replace tbl (int_of_string idx, name) md5
         | _ -> Alcotest.failf "malformed golden line %S" line);
  tbl

(* ---------- kill at every step ---------- *)

(* For every algorithm, every scenario family, and every cut point k:
   serve k requests, snapshot, restore from the blob, serve the rest —
   the completed run must be byte-identical (run_digest: decisions,
   facility ids, %.17g costs) to the uninterrupted run, which itself is
   pinned to test/golden/run_digests.txt. *)
let test_kill_at_every_step () =
  let golden = load_golden () in
  (* The covered scenarios must span the arrival axis: index 1 is a
     random-order stream and 0/2 are i.i.d. at the pinned master seed
     (index 5 adds a multi-site random-order one). Checkpoint/resume has
     to be order-oblivious, so every model rides the same contract. *)
  (* Indices 30/33 are the golden non-metric and leasing scenarios, so
     NONMETRIC-BF and LEASE-PD ride the same contract. *)
  let indices = [ 0; 1; 2; 5; 30; 33 ] in
  let tags =
    List.map
      (fun index ->
        let inst, _ = scenario index in
        Arrival.model_tag inst.Instance.arrival)
      indices
  in
  check_bool "covers a random-order stream" true (List.mem "ro" tags);
  check_bool "covers an i.i.d. stream" true (List.mem "iid" tags);
  List.iter
    (fun index ->
      let inst, seed = scenario index in
      let n = Instance.n_requests inst in
      List.iter
        (fun (name, (module A : Algo_intf.ALGO)) ->
          let straight =
            let t = A.create ~seed (Instance.env inst) in
            Array.iter (fun r -> ignore (A.step t r)) inst.Instance.requests;
            Omflp_check.Oracle.run_digest (A.run_so_far t)
          in
          (match Hashtbl.find_opt golden (index, name) with
          | Some md5 ->
              check_string
                (Printf.sprintf "scenario %02d %s matches golden" index name)
                md5
                (Digest.to_hex (Digest.string straight))
          | None -> Alcotest.failf "no golden digest for %d %s" index name);
          for k = 0 to n do
            let t = A.create ~seed (Instance.env inst) in
            for i = 0 to k - 1 do
              ignore (A.step t inst.Instance.requests.(i))
            done;
            let blob = A.snapshot t in
            let t' = A.restore (Instance.env inst) blob in
            for i = k to n - 1 do
              ignore (A.step t' inst.Instance.requests.(i))
            done;
            let resumed = Omflp_check.Oracle.run_digest (A.run_so_far t') in
            if resumed <> straight then
              Alcotest.failf
                "%s, scenario %d: kill/restore after request %d diverges \
                 from the uninterrupted run"
                name index k
          done)
        (Registry.of_family (Instance.family inst)))
    indices

(* ---------- committed snapshot fixtures (codec cross-version) ---------- *)

(* The v2 wire format is pinned by committed fixture blobs: for every
   registered algorithm, a snapshot taken after the first 5 requests of
   scenario 0 must equal the committed bytes exactly, and the committed
   bytes must restore and continue into the golden uninterrupted run. A
   failure here means the codec layout changed under existing snapshots
   — bump the algorithm's snapshot tag and regenerate deliberately with
   [dune exec tools/gen_snapshot_fixtures.exe]. *)
let fixture_path name =
  let rel =
    Filename.concat "golden"
      (Filename.concat "snapshot_v2" (String.lowercase_ascii name ^ ".snap"))
  in
  if Sys.file_exists rel then rel else Filename.concat "test" rel

let test_snapshot_fixture_cross_version () =
  let golden = load_golden () in
  List.iter
    (fun (name, (module A : Algo_intf.ALGO)) ->
      let index = family_index A.family in
      let inst, seed = scenario index in
      let n = Instance.n_requests inst in
      let cut = min 5 n in
      let path = fixture_path name in
      if not (Sys.file_exists path) then
        Alcotest.failf
          "no committed fixture for %s — run tools/gen_snapshot_fixtures.exe"
          name;
      let committed = In_channel.with_open_bin path In_channel.input_all in
      let t = A.create ~seed (Instance.env inst) in
      for i = 0 to cut - 1 do
        ignore (A.step t inst.Instance.requests.(i))
      done;
      check_bool
        (Printf.sprintf "%s snapshot bytes match the committed fixture" name)
        true
        (A.snapshot t = committed);
      let t' = A.restore (Instance.env inst) committed in
      for i = cut to n - 1 do
        ignore (A.step t' inst.Instance.requests.(i))
      done;
      let digest =
        Digest.to_hex
          (Digest.string (Omflp_check.Oracle.run_digest (A.run_so_far t')))
      in
      match Hashtbl.find_opt golden (index, name) with
      | Some md5 ->
          check_string
            (Printf.sprintf "%s committed fixture continues into golden run"
               name)
            md5 digest
      | None -> Alcotest.failf "no golden digest for %d %s" index name)
    (Registry.extended ())

(* A blob must only restore into the algorithm that wrote it. *)
let test_snapshot_rejects_foreign_blob () =
  let inst, seed = scenario 0 in
  let module P = Pd_omflp in
  let module G = Greedy_baseline in
  let t = G.create ~seed (Instance.env inst) in
  ignore (G.step t inst.Instance.requests.(0));
  let blob = G.snapshot t in
  check_bool "foreign blob raises Failure" true
    (match P.restore (Instance.env inst) blob with
    | _ -> false
    | exception Failure _ -> true)

(* ---------- wire format ---------- *)

let test_wire_parse_request () =
  let ok line =
    match Wire.parse_request ~n_sites:4 ~n_commodities:3 line with
    | Ok r -> r
    | Error e -> Alcotest.failf "unexpected parse error on %S: %s" line e
  in
  let err line =
    match Wire.parse_request ~n_sites:4 ~n_commodities:3 line with
    | Ok _ -> Alcotest.failf "expected a parse error on %S" line
    | Error e -> e
  in
  let r = ok {|{"site":2,"demand":[0,2]}|} in
  check_int "site" 2 r.Request.site;
  Alcotest.(check (list int))
    "demand" [ 0; 2 ]
    (Omflp_commodity.Cset.elements r.Request.demand);
  check_bool "bad json" true (err "{" <> "");
  check_bool "missing site" true (err {|{"demand":[0]}|} <> "");
  check_bool "site range" true (err {|{"site":4,"demand":[0]}|} <> "");
  check_bool "empty demand" true (err {|{"site":0,"demand":[]}|} <> "");
  check_bool "commodity range" true (err {|{"site":0,"demand":[3]}|} <> "")

let test_wire_wal_round_trip () =
  let r =
    Request.make ~site:3
      ~demand:(Omflp_commodity.Cset.of_list ~n_commodities:5 [ 1; 4 ])
  in
  let line = Wire.request_to_json ~index:7 r in
  check_string "canonical wal line" {|{"index":7,"site":3,"demand":[1,4]}|}
    line;
  match Wire.parse_wal_line ~n_sites:4 ~n_commodities:5 line with
  | Error e -> Alcotest.fail e
  | Ok (index, r') ->
      check_int "index" 7 index;
      check_int "site" 3 r'.Request.site;
      check_bool "demand" true
        (Omflp_commodity.Cset.equal r.Request.demand r'.Request.demand)

let test_wire_decision_latency_variants () =
  let inst, seed = scenario 0 in
  let session =
    Session.create
      ~algo:(module Pd_omflp : Algo_intf.ALGO)
      ~seed (Instance.env inst)
  in
  let d = Session.handle session inst.Instance.requests.(0) in
  let canonical = Wire.decision_to_json d in
  let with_latency = Wire.decision_to_json ~latency_s:0.25 d in
  check_bool "canonical has no latency field" true
    (not (contains ~sub:"latency_s" canonical));
  check_string "latency variant extends the canonical record"
    (String.sub canonical 0 (String.length canonical - 1)
    ^ {|,"latency_s":0.250000}|})
    with_latency

let test_wire_decision_buffer_allocation_bounded () =
  (* [decision_to_buffer] writes straight into a reused buffer; the
     former path built a fresh [%.17g] string per float plus a fresh
     Buffer and contents string per decision. Float formatting itself
     allocates a few short strings per [%.17g] (about 260 words for a
     whole decision on this record shape), so the budget is a small
     constant — growth past it means per-decision garbage crept back
     in. *)
  let inst, seed = scenario 0 in
  let session =
    Session.create
      ~algo:(module Pd_omflp : Algo_intf.ALGO)
      ~seed (Instance.env inst)
  in
  let d = Session.handle session inst.Instance.requests.(0) in
  let b = Buffer.create 256 in
  let serialize () =
    Buffer.clear b;
    Wire.decision_to_buffer ~latency_s:1.234e-4 b d
  in
  for _ = 1 to 64 do
    serialize ()
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    serialize ()
  done;
  let per_call = (Gc.minor_words () -. w0) /. 1000.0 in
  check_bool
    (Printf.sprintf "%.1f minor words per serialized decision (budget 400)"
       per_call)
    true (per_call < 400.0)

(* ---------- checkpoint durability ---------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "omflp-serve" ".ckpt" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let read_lines path =
  if not (Sys.file_exists path) then []
  else In_channel.with_open_text path In_channel.input_lines

let md5 = "0123456789abcdef0123456789abcdef"

let algo_pd = (module Pd_omflp : Algo_intf.ALGO)

let fresh_checkpoint ~dir ~snapshot_every =
  Checkpoint.create ~dir ~algo:Pd_omflp.name ~seed:(Some 0)
    ~instance_md5:md5 ~snapshot_every

(* Serve [k] requests into a fresh checkpoint and abandon the session
   without closing — the library-level equivalent of SIGKILL. *)
let crash_after ~dir ~snapshot_every k =
  let inst, _ = scenario 0 in
  let cp = fresh_checkpoint ~dir ~snapshot_every in
  let session =
    Session.create ~algo:algo_pd ~seed:0 ~checkpoint:cp (Instance.env inst)
  in
  for i = 0 to k - 1 do
    ignore (Session.handle session inst.Instance.requests.(i))
  done;
  inst

(* Reference decision log: the full run, straight through. *)
let reference_decisions inst =
  let session =
    Session.create ~algo:algo_pd ~seed:0 (Instance.env inst)
  in
  Array.to_list inst.Instance.requests
  |> List.map (fun r -> Wire.decision_to_json (Session.handle session r))

let resume_and_finish ~dir inst =
  let rz =
    Checkpoint.open_resume ~dir
      ~n_sites:(Instance.n_sites inst)
      ~n_commodities:(Instance.n_commodities inst)
      ~instance_md5:md5
  in
  let session, lost =
    Session.resume ~algo:algo_pd rz (Instance.env inst)
  in
  let rest = ref [] in
  for i = Session.count session to Instance.n_requests inst - 1 do
    rest :=
      Wire.decision_to_json (Session.handle session inst.Instance.requests.(i))
      :: !rest
  done;
  Session.close session;
  (rz, lost, List.rev !rest)

let test_wal_precedes_decisions () =
  with_temp_dir @@ fun dir ->
  let inst = crash_after ~dir ~snapshot_every:2 5 in
  let rz =
    Checkpoint.open_resume ~dir
      ~n_sites:(Instance.n_sites inst)
      ~n_commodities:(Instance.n_commodities inst)
      ~instance_md5:md5
  in
  check_int "wal holds every accepted request" 5 (List.length rz.Checkpoint.wal);
  check_int "every decision is durable" 5 rz.Checkpoint.n_decisions;
  (match rz.Checkpoint.snapshot with
  | Some (count, _) -> check_int "snapshot at the last cadence point" 4 count
  | None -> Alcotest.fail "expected a snapshot");
  Checkpoint.close rz.Checkpoint.cp

let test_kill_resume_decision_log_byte_identical () =
  (* Kill after k requests for every k, resume, finish: the durable
     decision log must equal the straight-through log line for line. *)
  let inst, _ = scenario 0 in
  let reference = reference_decisions inst in
  for k = 0 to Instance.n_requests inst do
    with_temp_dir @@ fun dir ->
    ignore (crash_after ~dir ~snapshot_every:3 k);
    let _, lost, _ = resume_and_finish ~dir inst in
    check_int (Printf.sprintf "kill at %d loses nothing durable" k) 0
      (List.length lost);
    Alcotest.(check (list string))
      (Printf.sprintf "decision log after kill at %d" k)
      reference
      (read_lines (Filename.concat dir "decisions.jsonl"))
  done

let test_handle_batch_matches_handle () =
  (* Batched serving is an amortization, not a semantic change: uneven
     chunk sizes (including an empty chunk and one spanning two snapshot
     cadence points) must produce the same decisions and byte-identical
     WAL and decision logs as per-request [handle]. *)
  let inst, _ = scenario 0 in
  let n = Instance.n_requests inst in
  with_temp_dir @@ fun dir_a ->
  with_temp_dir @@ fun dir_b ->
  let cp_a = fresh_checkpoint ~dir:dir_a ~snapshot_every:3 in
  let sa =
    Session.create ~algo:algo_pd ~seed:0 ~checkpoint:cp_a (Instance.env inst)
  in
  let per_request = ref [] in
  Array.iter
    (fun r ->
      per_request := Wire.decision_to_json (Session.handle sa r) :: !per_request)
    inst.Instance.requests;
  Session.close sa;
  let cp_b = fresh_checkpoint ~dir:dir_b ~snapshot_every:3 in
  let sb =
    Session.create ~algo:algo_pd ~seed:0 ~checkpoint:cp_b (Instance.env inst)
  in
  let batched = ref [] in
  let i = ref 0 in
  List.iter
    (fun sz ->
      let sz = min sz (n - !i) in
      let ds = Session.handle_batch sb (Array.sub inst.Instance.requests !i sz) in
      check_int "batch returns one decision per request" sz (Array.length ds);
      Array.iter
        (fun d -> batched := Wire.decision_to_json d :: !batched)
        ds;
      i := !i + sz)
    [ 1; 4; 0; 7; 2; n ];
  check_int "all requests consumed" n !i;
  Session.close sb;
  Alcotest.(check (list string))
    "decision records identical" (List.rev !per_request) (List.rev !batched);
  List.iter
    (fun f ->
      check_string
        (Printf.sprintf "%s byte-identical between modes" f)
        (In_channel.with_open_bin (Filename.concat dir_a f) In_channel.input_all)
        (In_channel.with_open_bin (Filename.concat dir_b f) In_channel.input_all))
    [ "wal.jsonl"; "decisions.jsonl" ]

let test_torn_tails_and_crash_window () =
  with_temp_dir @@ fun dir ->
  let inst = crash_after ~dir ~snapshot_every:100 6 in
  (* Simulate the crash window: the decision append of request 5 died
     mid-write (partial line, no newline), and a WAL append for request 6
     died the same way. *)
  let chop path =
    let content = In_channel.with_open_bin path In_channel.input_all in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc
          (String.sub content 0 (String.length content - 7)))
  in
  chop (Filename.concat dir "decisions.jsonl");
  let oc =
    open_out_gen [ Open_wronly; Open_append ] 0o644
      (Filename.concat dir "wal.jsonl")
  in
  output_string oc {|{"index":6,"si|};
  close_out oc;
  let rz, lost, _ = resume_and_finish ~dir inst in
  check_int "torn wal line dropped" 6 (List.length rz.Checkpoint.wal);
  check_int "torn decision line dropped" 5 rz.Checkpoint.n_decisions;
  (match lost with
  | [ d ] -> check_int "the crash-window decision is re-emitted" 5 d.Wire.index
  | l -> Alcotest.failf "expected exactly one lost decision, got %d"
           (List.length l));
  Alcotest.(check (list string))
    "decision log healed to the reference"
    (reference_decisions inst)
    (read_lines (Filename.concat dir "decisions.jsonl"))

let expect_failure ~substring f =
  match f () with
  | _ -> Alcotest.failf "expected Failure mentioning %S" substring
  | exception Failure msg ->
      check_bool
        (Printf.sprintf "error %S mentions %S" msg substring)
        true
        (contains ~sub:substring msg)

let test_corruption_is_named () =
  with_temp_dir @@ fun dir ->
  let inst = crash_after ~dir ~snapshot_every:2 6 in
  let open_rz () =
    Checkpoint.open_resume ~dir
      ~n_sites:(Instance.n_sites inst)
      ~n_commodities:(Instance.n_commodities inst)
      ~instance_md5:md5
  in
  (* Truncated snapshot: the MD5 in the header no longer matches. *)
  let snap = Filename.concat dir "snapshot.bin" in
  let content = In_channel.with_open_bin snap In_channel.input_all in
  Out_channel.with_open_bin snap (fun oc ->
      Out_channel.output_string oc
        (String.sub content 0 (String.length content - 3)));
  expect_failure ~substring:"snapshot integrity check failed" open_rz;
  (* Garbage header. *)
  Out_channel.with_open_bin snap (fun oc ->
      Out_channel.output_string oc "not a snapshot\njunk");
  expect_failure ~substring:"corrupt snapshot header" open_rz;
  (* Snapshot newer than the durable decisions: external truncation of
     the decision log (a real crash cannot produce this ordering). *)
  Out_channel.with_open_bin snap (fun oc ->
      Out_channel.output_string oc content);
  let dec = Filename.concat dir "decisions.jsonl" in
  let lines = read_lines dec in
  Out_channel.with_open_bin dec (fun oc ->
      List.iteri
        (fun i l -> if i < 3 then Out_channel.output_string oc (l ^ "\n"))
        lines);
  expect_failure ~substring:"snapshot covers" open_rz;
  (* Wrong instance hash. *)
  expect_failure ~substring:"instance mismatch" (fun () ->
      Checkpoint.open_resume ~dir
        ~n_sites:(Instance.n_sites inst)
        ~n_commodities:(Instance.n_commodities inst)
        ~instance_md5:(String.make 32 'f'))

(* ---------- manifest validation (regression: int_of_float truncation) ---------- *)

let replace_once ~old ~by s =
  let n = String.length s and m = String.length old in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = old then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "substring %S not found in %S" old s
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let rewrite_manifest ~dir ~old ~by =
  let path = Filename.concat dir "MANIFEST.json" in
  let s = In_channel.with_open_text path In_channel.input_all in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (replace_once ~old ~by s))

(* [load_manifest] used to read snapshot_every with a bare
   [int_of_float]: 2.7 silently truncated to 2 (changing the snapshot
   cadence of the resumed session), and 0 surfaced later as a naked
   [Division_by_zero] from the cadence check. Both must instead be named
   [Checkpoint.resume:] manifest errors at load time. *)
let test_manifest_validation () =
  let inst, _ = scenario 0 in
  let open_rz dir () =
    Checkpoint.open_resume ~dir
      ~n_sites:(Instance.n_sites inst)
      ~n_commodities:(Instance.n_commodities inst)
      ~instance_md5:md5
  in
  let with_edit ~old ~by f =
    with_temp_dir @@ fun dir ->
    ignore (crash_after ~dir ~snapshot_every:4 5);
    rewrite_manifest ~dir ~old ~by;
    f dir
  in
  with_edit ~old:{|"snapshot_every":4|} ~by:{|"snapshot_every":2.7|}
    (fun dir ->
      expect_failure ~substring:"must be an integer" (open_rz dir);
      expect_failure ~substring:"Checkpoint.resume:" (open_rz dir));
  with_edit ~old:{|"snapshot_every":4|} ~by:{|"snapshot_every":0|} (fun dir ->
      expect_failure ~substring:"must be >= 1" (open_rz dir));
  with_edit ~old:{|"snapshot_every":4|} ~by:{|"snapshot_every":-3|} (fun dir ->
      expect_failure ~substring:"must be >= 1" (open_rz dir));
  with_edit ~old:{|"snapshot_every":4|} ~by:{|"snapshot_every":"4"|}
    (fun dir -> expect_failure ~substring:"must be an integer" (open_rz dir));
  with_edit ~old:{|"snapshot_every":4|} ~by:{|"snapshot_evry":4|} (fun dir ->
      expect_failure ~substring:"misses" (open_rz dir));
  with_edit ~old:{|"seed":0|} ~by:{|"seed":1.5|} (fun dir ->
      expect_failure ~substring:{|"seed" must be an integer|} (open_rz dir));
  (* An intact manifest still resumes. *)
  with_temp_dir @@ fun dir ->
  ignore (crash_after ~dir ~snapshot_every:4 5);
  let rz = open_rz dir () in
  check_int "valid manifest resumes" 4 (Checkpoint.snapshot_every rz.Checkpoint.cp);
  Checkpoint.close rz.Checkpoint.cp

(* ---------- resume cross-check (regression: unchecked WAL replay) ---------- *)

let copy_file src dst =
  let content = In_channel.with_open_bin src In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc content)

(* [Session.resume] used to recompute decisions during WAL replay
   without ever comparing them to the durable decision log — a snapshot
   from a different history replayed cleanly and the session silently
   continued a stream contradicting what the client already saw. Plant a
   foreign-history snapshot and require the named failure. *)
let test_resume_detects_divergent_snapshot () =
  let inst, _ = scenario 0 in
  with_temp_dir @@ fun dir_a ->
  with_temp_dir @@ fun dir_b ->
  (* A: the genuine session, six requests in arrival order. *)
  let cp_a = fresh_checkpoint ~dir:dir_a ~snapshot_every:4 in
  let sa =
    Session.create ~algo:algo_pd ~seed:0 ~checkpoint:cp_a (Instance.env inst)
  in
  for i = 0 to 5 do
    ignore (Session.handle sa inst.Instance.requests.(i))
  done;
  (* B: same shape (snapshot at count 4) but a different history — the
     first request served six times over. *)
  let cp_b = fresh_checkpoint ~dir:dir_b ~snapshot_every:4 in
  let sb =
    Session.create ~algo:algo_pd ~seed:0 ~checkpoint:cp_b (Instance.env inst)
  in
  for _ = 1 to 6 do
    ignore (Session.handle sb inst.Instance.requests.(0))
  done;
  (* Plant B's snapshot into A: internally consistent (its own MD5
     matches), covers the same count, passes every file-level check —
     only the replay cross-check can catch it. *)
  copy_file
    (Filename.concat dir_b "snapshot.bin")
    (Filename.concat dir_a "snapshot.bin");
  expect_failure ~substring:"diverges from the durable decision log"
    (fun () ->
      let rz =
        Checkpoint.open_resume ~dir:dir_a
          ~n_sites:(Instance.n_sites inst)
          ~n_commodities:(Instance.n_commodities inst)
          ~instance_md5:md5
      in
      Session.resume ~algo:algo_pd rz (Instance.env inst))

(* ---------- the socket server ---------- *)

let with_server_root f =
  with_temp_dir @@ fun root ->
  Unix.mkdir root 0o755;
  f root

let server_config ~root ~env ?(max_sessions = 64) ?(queue_depth = 4)
    ?(workers = 2) () =
  {
    Server.listen = Filename.concat root "srv.sock";
    algo = Pd_omflp.name;
    env;
    instance_md5 = md5;
    checkpoint_root = Some (Filename.concat root "cps");
    snapshot_every = 4;
    seed = 0;
    max_sessions;
    queue_depth;
    workers;
  }

(* Tentpole acceptance: 8 concurrent sessions through one server, each
   stream a distinct rotation (wrapping past the instance length, so
   snapshots fire mid-stream), durable logs byte-identical to the same
   streams served by a plain single-session [Session] — which is what
   stdin mode drives. The queue depth of 4 against a window of 5 also
   forces the backpressure path. *)
let test_server_multi_client_byte_identical () =
  let inst, _ = scenario 0 in
  let n = Instance.n_requests inst in
  with_server_root @@ fun root ->
  let cfg = server_config ~root ~env:inst () in
  let server = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let per = (2 * n) + 3 in
  match
    Omflp_loadgen.Loadgen.run
      {
        Omflp_loadgen.Loadgen.connect = cfg.Server.listen;
        env = inst;
        sessions = 8;
        requests_per_session = per;
        algo = None;
        seed = None;
        snapshot_every = None;
        checkpoint = None;
        resume = false;
        window = 5;
        session_prefix = "c";
        dump_dir = None;
      }
  with
  | Error e -> Alcotest.fail e
  | Ok report ->
      check_int "every request answered" (8 * per)
        report.Omflp_loadgen.Loadgen.r_requests;
      for i = 0 to 7 do
        let reference =
          let s =
            Session.create ~algo:algo_pd ~seed:0 (Instance.env inst)
          in
          List.init per (fun j ->
              Wire.decision_to_json
                (Session.handle s inst.Instance.requests.((i + j) mod n)))
        in
        Alcotest.(check (list string))
          (Printf.sprintf "session c%d durable log = single-session run" i)
          reference
          (read_lines
             (Filename.concat root
                (Filename.concat "cps"
                   (Filename.concat (Printf.sprintf "c%d" i)
                      "decisions.jsonl"))))
      done

let hello_line ?algo ?seed ?snapshot_every ?checkpoint ?(resume = false) id =
  Wire.hello_to_json
    {
      Wire.h_session = id;
      h_algo = algo;
      h_seed = seed;
      h_snapshot_every = snapshot_every;
      h_checkpoint = checkpoint;
      h_resume = resume;
    }

(* A raw synchronous client for handshake-level tests. *)
let raw_client sock id =
  let fd = Listener.connect sock in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc (hello_line id);
  output_char oc '\n';
  flush oc;
  let reply =
    match Wire.parse_server_line (input_line ic) with
    | Ok l -> l
    | Error e -> Alcotest.failf "unparseable server line: %s" e
  in
  (fd, reply)

let test_server_admission_control () =
  let inst, _ = scenario 0 in
  with_server_root @@ fun root ->
  let cfg = server_config ~root ~env:inst ~max_sessions:2 ~workers:1 () in
  let server = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let fd1, r1 = raw_client cfg.Server.listen "a" in
  let fd2, r2 = raw_client cfg.Server.listen "b" in
  (match (r1, r2) with
  | Wire.Ack a, Wire.Ack b ->
      check_string "session a acked" "a" a.Wire.a_session;
      check_string "session b acked" "b" b.Wire.a_session
  | _ -> Alcotest.fail "expected two acks");
  check_int "two live sessions" 2 (Server.active_sessions server);
  (* Third session: over capacity. *)
  let fd3, r3 = raw_client cfg.Server.listen "c" in
  (match r3 with
  | Wire.Refused e ->
      check_bool "refusal names max-sessions" true
        (contains ~sub:"max-sessions" e)
  | _ -> Alcotest.fail "expected a capacity refusal");
  (* Duplicate id: refused while the first connection is live. *)
  let fd4, r4 = raw_client cfg.Server.listen "a" in
  (match r4 with
  | Wire.Refused e ->
      check_bool "refusal names the duplicate" true
        (contains ~sub:"already connected" e)
  | _ -> Alcotest.fail "expected a duplicate-session refusal");
  (* Traversal-shaped ids: a session id becomes a checkpoint directory
     name, so ".." and anything with a path separator must be refused at
     the handshake (before any directory is created). *)
  let traversal =
    List.map
      (fun id ->
        let fd, r = raw_client cfg.Server.listen id in
        (match r with
        | Wire.Refused e ->
            check_bool
              (Printf.sprintf "refusal for id %S names validity" id)
              true
              (contains ~sub:"invalid session id" e)
        | _ -> Alcotest.failf "expected id %S to be refused" id);
        fd)
      [ ".."; "."; "x/y"; "" ]
  in
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    ((fd1 :: fd2 :: fd3 :: fd4 :: traversal))

(* ---------- SIGKILL the whole server, resume every session ---------- *)

(* The test runs from _build/default/test (dune runtest) or the
   workspace root (dune exec); anchor on the test executable instead of
   the cwd. *)
let cli_binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "omflp_cli.exe"))

let wait_connect sock =
  let rec go tries =
    match Listener.connect sock with
    | fd -> fd
    | exception Failure _ ->
        if tries = 0 then Alcotest.fail "server never came up";
        Unix.sleepf 0.05;
        go (tries - 1)
  in
  go 200

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let recv_line ic =
  match Wire.parse_server_line (input_line ic) with
  | Ok l -> l
  | Error e -> Alcotest.failf "unparseable server line: %s" e

(* Drive the real binary: open a session over the socket, serve half the
   stream, SIGKILL the server process mid-flight, restart it on the same
   checkpoint root, resume the session by handshake, finish the stream —
   the durable decision log must equal the uninterrupted reference. *)
let test_server_sigkill_resume () =
  if not (Sys.file_exists cli_binary) then
    Alcotest.skip ();
  let inst, _ = scenario 0 in
  let n = Instance.n_requests inst in
  with_server_root @@ fun root ->
  let env_file = Filename.concat root "env.inst" in
  Serial.save_file env_file inst;
  let sock = Filename.concat root "srv.sock" in
  let cps = Filename.concat root "cps" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let spawn () =
    Unix.create_process cli_binary
      [|
        cli_binary; "serve"; "--env"; env_file; "--listen"; sock;
        "--checkpoint"; cps; "--snapshot-every"; "3"; "--workers"; "1";
        "--seed"; "0";
      |]
      Unix.stdin Unix.stdout devnull
  in
  let reap pid =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  let request_lines =
    Array.map
      (fun r ->
        Printf.sprintf {|{"site":%d,"demand":[%s]}|} r.Request.site
          (String.concat ","
             (List.map string_of_int
                (Omflp_commodity.Cset.elements r.Request.demand))))
      inst.Instance.requests
  in
  let pid = ref (spawn ()) in
  Fun.protect
    ~finally:(fun () ->
      reap !pid;
      Unix.close devnull)
    (fun () ->
      (* Phase 1: serve just past a snapshot boundary, then SIGKILL. *)
      let fd = wait_connect sock in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      send_line oc (hello_line "s");
      (match recv_line ic with
      | Wire.Ack a -> check_int "fresh session" 0 a.Wire.a_served
      | _ -> Alcotest.fail "expected an ack");
      let k = (n / 2) + 1 in
      for i = 0 to k - 1 do
        send_line oc request_lines.(i);
        match recv_line ic with
        | Wire.Decision_line idx -> check_int "in-order decision" i idx
        | _ -> Alcotest.fail "expected a decision"
      done;
      Unix.kill !pid Sys.sigkill;
      ignore (Unix.waitpid [] !pid);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* Phase 2: restart on the same root, resume, finish. *)
      pid := spawn ();
      let fd = wait_connect sock in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      send_line oc (hello_line ~resume:true "s");
      let served =
        match recv_line ic with
        | Wire.Ack a ->
            for _ = 1 to a.Wire.a_reemitted do
              ignore (recv_line ic)
            done;
            a.Wire.a_served
        | Wire.Refused e -> Alcotest.failf "resume refused: %s" e
        | _ -> Alcotest.fail "expected a resume ack"
      in
      check_bool "resume lost nothing durable" true (served = k);
      for i = served to n - 1 do
        send_line oc request_lines.(i);
        match recv_line ic with
        | Wire.Decision_line idx -> check_int "resumed decision" i idx
        | _ -> Alcotest.fail "expected a decision"
      done;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      (match recv_line ic with
      | Wire.Done (served, _) -> check_int "done covers the stream" n served
      | _ -> Alcotest.fail "expected the done record");
      (try Unix.close fd with Unix.Unix_error _ -> ());
      reap !pid;
      (* The durable log equals the uninterrupted single-session run. *)
      let reference =
        let s =
          Session.create ~algo:algo_pd ~seed:0 (Instance.env inst)
        in
        Array.to_list inst.Instance.requests
        |> List.map (fun r -> Wire.decision_to_json (Session.handle s r))
      in
      Alcotest.(check (list string))
        "decision log byte-identical across SIGKILL" reference
        (read_lines
           (Filename.concat cps (Filename.concat "s" "decisions.jsonl"))))

let test_create_refuses_live_directory () =
  with_temp_dir @@ fun dir ->
  let cp = fresh_checkpoint ~dir ~snapshot_every:4 in
  Checkpoint.close cp;
  expect_failure ~substring:"already holds a session" (fun () ->
      fresh_checkpoint ~dir ~snapshot_every:4)

let test_session_algo_mismatch () =
  with_temp_dir @@ fun dir ->
  let inst, _ = scenario 0 in
  let cp = fresh_checkpoint ~dir ~snapshot_every:4 in
  expect_failure ~substring:"checkpoint belongs to" (fun () ->
      Session.create
        ~algo:(module Greedy_baseline : Algo_intf.ALGO)
        ~seed:0 ~checkpoint:cp (Instance.env inst))

(* An algorithm from the wrong problem family must refuse at session open
   with the named mismatch error — never crash mid-run. *)
let test_session_family_mismatch () =
  let inst, _ = scenario 0 in
  expect_failure
    ~substring:
      "family mismatch: algorithm NONMETRIC-BF serves the nonmetric-fl \
       family but the environment is omflp" (fun () ->
      Session.create
        ~algo:(module Nonmetric_bf : Algo_intf.ALGO)
        ~seed:0 (Instance.env inst));
  let lease_inst, _ = scenario 33 in
  expect_failure ~substring:"family mismatch: algorithm PD-OMFLP" (fun () ->
      Session.create
        ~algo:(module Pd_omflp : Algo_intf.ALGO)
        ~seed:0 (Instance.env lease_inst))

(* A snapshot blob must never restore across families: the environment's
   family gate fires before any state is rebuilt. *)
let test_cross_family_restore_refused () =
  let omflp_inst, _ = scenario 0 in
  let lease_inst, lseed = scenario 33 in
  let t = Lease_pd.create ~seed:lseed (Instance.env lease_inst) in
  ignore (Lease_pd.step t lease_inst.Instance.requests.(0));
  let blob = Lease_pd.snapshot t in
  check_bool "leasing blob refuses an OMFLP environment" true
    (match Lease_pd.restore (Instance.env omflp_inst) blob with
    | _ -> false
    | exception Failure msg -> contains ~sub:"family mismatch" msg)

let () =
  Alcotest.run "serve"
    [
      ( "resume",
        [
          Alcotest.test_case "kill at every step, all algorithms" `Slow
            test_kill_at_every_step;
          Alcotest.test_case "committed v2 fixtures restore and continue"
            `Quick test_snapshot_fixture_cross_version;
          Alcotest.test_case "foreign blob rejected" `Quick
            test_snapshot_rejects_foreign_blob;
          Alcotest.test_case "family mismatch refused at session open" `Quick
            test_session_family_mismatch;
          Alcotest.test_case "cross-family restore refused" `Quick
            test_cross_family_restore_refused;
        ] );
      ( "wire",
        [
          Alcotest.test_case "parse request" `Quick test_wire_parse_request;
          Alcotest.test_case "wal round trip" `Quick test_wire_wal_round_trip;
          Alcotest.test_case "decision latency variants" `Quick
            test_wire_decision_latency_variants;
          Alcotest.test_case "decision buffer allocation bounded" `Quick
            test_wire_decision_buffer_allocation_bounded;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "wal precedes decisions" `Quick
            test_wal_precedes_decisions;
          Alcotest.test_case "kill/resume decision log byte-identical" `Slow
            test_kill_resume_decision_log_byte_identical;
          Alcotest.test_case "handle_batch byte-identical to handle" `Quick
            test_handle_batch_matches_handle;
          Alcotest.test_case "torn tails and crash window" `Quick
            test_torn_tails_and_crash_window;
          Alcotest.test_case "corruption errors are named" `Quick
            test_corruption_is_named;
          Alcotest.test_case "manifest validation" `Quick
            test_manifest_validation;
          Alcotest.test_case "resume detects divergent snapshot" `Quick
            test_resume_detects_divergent_snapshot;
          Alcotest.test_case "create refuses a live directory" `Quick
            test_create_refuses_live_directory;
          Alcotest.test_case "algorithm mismatch" `Quick
            test_session_algo_mismatch;
        ] );
      ( "server",
        [
          Alcotest.test_case "8 clients byte-identical to single-session"
            `Quick test_server_multi_client_byte_identical;
          Alcotest.test_case "admission control" `Quick
            test_server_admission_control;
          Alcotest.test_case "SIGKILL mid-stream, resume by handshake" `Slow
            test_server_sigkill_resume;
        ] );
    ]
