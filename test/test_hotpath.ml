(* The hot-path optimization layer's contracts:

   - Dist_cache serves exactly the kernel's values and counts its work;
   - lazy (Memo) metrics are indistinguishable from the eager matrices
     they replaced;
   - the incremental Nearest_index agrees with a naive full scan over
     the open-facility list (the code it replaced);
   - Simulator.run_many equals per-algorithm Simulator.run;
   - the golden run digests (test/golden/run_digests.txt) still hold:
     byte-identical decisions for every registered algorithm. *)

open Omflp_prelude
open Omflp_metric
open Omflp_commodity
open Omflp_instance

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float_exact msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%h = %h)" msg a b) true (a = b)

(* ---------- Dist_cache ---------- *)

let test_cache_values () =
  let kernel a b = Float.abs (float_of_int (a - b)) *. 1.5 in
  let c = Dist_cache.create ~n:6 ~kernel in
  for a = 0 to 5 do
    for b = 0 to 5 do
      check_float_exact "get = kernel" (kernel a b) (Dist_cache.get c a b)
    done
  done;
  for a = 0 to 5 do
    let row = Dist_cache.row c a in
    for b = 0 to 5 do
      check_float_exact "row = kernel" (kernel a b) row.(b)
    done
  done

let test_cache_stats () =
  let calls = ref 0 in
  let kernel a b =
    incr calls;
    Float.abs (float_of_int (a - b))
  in
  let c = Dist_cache.create ~n:4 ~kernel in
  check_int "no kernel calls at create" 0 !calls;
  ignore (Dist_cache.get c 1 2);
  let s = Dist_cache.stats c in
  check_int "first get builds one row" 1 s.Dist_cache.row_builds;
  check_int "one row resident" 1 s.Dist_cache.rows_resident;
  check_int "first get is not a hit" 0 s.Dist_cache.hits;
  (* Same pair again: served from row 1. *)
  ignore (Dist_cache.get c 1 3);
  (* Mirrored pair: row 2 is not resident, but row 1 is — a symmetric
     kernel lets (2, 1) answer from row 1 without building row 2. *)
  ignore (Dist_cache.get c 2 1);
  let s = Dist_cache.stats c in
  check_int "no extra rows built" 1 s.Dist_cache.row_builds;
  check_int "both lookups were hits" 2 s.Dist_cache.hits;
  check_int "kernel ran once per row cell" 4 !calls

let test_cache_bounds () =
  let c = Dist_cache.create ~n:3 ~kernel:(fun _ _ -> 0.0) in
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Dist_cache.get: (3, 0) outside [0, 3)") (fun () ->
      ignore (Dist_cache.get c 3 0));
  Alcotest.check_raises "row out of range"
    (Invalid_argument "Dist_cache.row: -1 outside [0, 3)") (fun () ->
      ignore (Dist_cache.row c (-1)))

(* ---------- lazy metrics = eager matrices ---------- *)

let test_lazy_line_equals_dense () =
  let positions = [| 0.0; 3.5; 1.25; 10.0; 7.75 |] in
  let n = Array.length positions in
  let lazy_m = Finite_metric.line positions in
  let dense =
    Finite_metric.of_matrix
      (Array.init n (fun i ->
           Array.init n (fun j -> Float.abs (positions.(i) -. positions.(j)))))
  in
  for i = 0 to n - 1 do
    let row = Finite_metric.row lazy_m i in
    for j = 0 to n - 1 do
      check_float_exact "line dist" (Finite_metric.dist dense i j)
        (Finite_metric.dist lazy_m i j);
      check_float_exact "line row" (Finite_metric.dist dense i j) row.(j)
    done
  done

let test_lazy_euclidean_equals_dense () =
  let points = [| (0.0, 0.0); (3.0, 4.0); (1.0, 1.0); (10.0, 2.0) |] in
  let n = Array.length points in
  let lazy_m = Finite_metric.euclidean points in
  let dist i j =
    let xi, yi = points.(i) and xj, yj = points.(j) in
    let dx = xi -. xj and dy = yi -. yj in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check_float_exact "euclidean dist" (dist i j)
        (Finite_metric.dist lazy_m i j);
      check_float_exact "symmetric" (Finite_metric.dist lazy_m i j)
        (Finite_metric.dist lazy_m j i)
    done
  done

let test_lazy_uniform () =
  let m = Finite_metric.uniform 5 ~d:2.5 in
  for i = 0 to 4 do
    for j = 0 to 4 do
      check_float_exact "uniform dist"
        (if i = j then 0.0 else 2.5)
        (Finite_metric.dist m i j)
    done
  done

(* ---------- Nearest_index = naive full scan ---------- *)

(* A random 1-D metric plus a random opening sequence; the index must
   agree cell-for-cell with a scan over the opening list (the
   pre-refactor Facility_store behavior: min distance, earliest-opened
   wins ties). *)
let index_scenario_gen =
  QCheck.make ~print:(fun (pos, opens, s) ->
      Printf.sprintf "n=%d |S|=%d openings=%d" (List.length pos) s
        (List.length opens))
    QCheck.Gen.(
      let* n_sites = int_range 2 8 in
      let* n_commodities = int_range 1 5 in
      let* pos = list_size (return n_sites) (float_bound_inclusive 50.0) in
      let* n_open = int_range 0 6 in
      let* opens =
        list_size (return n_open)
          (pair (int_range 0 (n_sites - 1))
             (list_size (int_range 0 n_commodities)
                (int_range 0 (n_commodities - 1))))
      in
      return (pos, opens, n_commodities))

let prop_index_equals_scan =
  QCheck.Test.make ~name:"nearest index = naive scan" ~count:200
    index_scenario_gen (fun (pos, opens, n_commodities) ->
      let positions = Array.of_list pos in
      let n_sites = Array.length positions in
      let metric = Finite_metric.line positions in
      let index = Omflp_core.Nearest_index.create ~n_commodities ~n_sites in
      (* (site, offered, id) in opening order; id is the opening rank. *)
      let openings =
        List.mapi
          (fun id (site, commodities) ->
            let offered =
              if commodities = [] then Cset.full ~n_commodities
              else Cset.of_list ~n_commodities commodities
            in
            (site, offered, id))
          opens
      in
      List.iter
        (fun (site, offered, id) ->
          Omflp_core.Nearest_index.note_opened index metric ~site ~offered ~id)
        openings;
      let naive ~pred ~site =
        List.fold_left
          (fun (best_d, best_id) (f_site, offered, id) ->
            if pred offered then
              let d = Finite_metric.dist metric site f_site in
              if d < best_d then (d, id) else (best_d, best_id)
            else (best_d, best_id))
          (infinity, -1) openings
      in
      let ok = ref true in
      for site = 0 to n_sites - 1 do
        for e = 0 to n_commodities - 1 do
          let d, id = naive ~pred:(fun off -> Cset.mem off e) ~site in
          if
            not
              (Omflp_core.Nearest_index.dist index ~commodity:e ~site = d
              && Omflp_core.Nearest_index.id index ~commodity:e ~site = id)
          then ok := false
        done;
        let d, id = naive ~pred:Cset.is_full ~site in
        if
          not
            (Omflp_core.Nearest_index.dist_large index ~site = d
            && Omflp_core.Nearest_index.id_large index ~site = id)
        then ok := false
      done;
      !ok)

(* ---------- run_many = run ---------- *)

let test_run_many_equals_run () =
  let rng = Splitmix.of_int 0xcafe in
  let inst =
    Generators.clustered rng ~clusters:3 ~per_cluster:4 ~n_requests:30
      ~n_commodities:6 ~side:100.0 ~spread:2.0
      ~cost:(fun ~n_commodities ~n_sites ->
        Omflp_commodity.Cost_function.power_law ~n_commodities ~n_sites ~x:1.0)
  in
  let algos =
    Omflp_core.Registry.of_family (Omflp_instance.Instance.family inst)
  in
  let batched = Omflp_core.Simulator.run_many ~seed:11 algos inst in
  check_int "one run per algorithm" (List.length algos) (List.length batched);
  List.iter2
    (fun (name, (module A : Omflp_core.Algo_intf.ALGO)) (name', batch) ->
      Alcotest.(check string) "order preserved" name name';
      let solo = Omflp_core.Simulator.run ~seed:11 (module A) inst in
      Alcotest.(check string)
        (name ^ " digest")
        (Omflp_check.Oracle.run_digest solo)
        (Omflp_check.Oracle.run_digest batch))
    algos batched

(* ---------- golden digests: the decision-invariance pin ---------- *)

(* Every (scenario, algorithm) digest in test/golden/run_digests.txt must
   reproduce exactly. This is the contract that lets the caching /
   indexing layer claim "same decisions, less work"; regenerate
   deliberately with [dune exec tools/gen_digests.exe >
   test/golden/run_digests.txt] only when an algorithm's behavior is
   meant to change. *)
let test_golden_digests () =
  let golden = "golden/run_digests.txt" in
  let path =
    if Sys.file_exists golden then golden else Filename.concat "test" golden
  in
  let lines =
    In_channel.with_open_text path In_channel.input_lines
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  check_bool "golden file has rows" true (List.length lines > 0);
  let master_seed = 0xD16E57 in
  let algos = Omflp_core.Registry.extended () in
  let digests = Hashtbl.create 256 in
  let n_scenarios = 36 in
  let expected_rows = ref 0 in
  for index = 0 to n_scenarios - 1 do
    let scenario = Omflp_check.Scenario.golden ~master_seed ~index in
    let fam =
      Omflp_instance.Instance.family scenario.Omflp_check.Scenario.instance
    in
    List.iter
      (fun (name, algo) ->
        if Omflp_core.Registry.family_of algo = fam then begin
          incr expected_rows;
          let run =
            Omflp_core.Simulator.run
              ~seed:scenario.Omflp_check.Scenario.algo_seed ~check:false algo
              scenario.Omflp_check.Scenario.instance
          in
          Hashtbl.replace digests (index, name)
            (Digest.to_hex (Digest.string (Omflp_check.Oracle.run_digest run)))
        end)
      algos
  done;
  check_int "rows = scenarios x family algorithms" !expected_rows
    (List.length lines);
  List.iter
    (fun line ->
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [ idx; name; md5 ] ->
          let index = int_of_string idx in
          let got =
            match Hashtbl.find_opt digests (index, name) with
            | Some d -> d
            | None -> Alcotest.failf "no digest for scenario %d %s" index name
          in
          Alcotest.(check string)
            (Printf.sprintf "scenario %02d %s" index name)
            md5 got
      | _ -> Alcotest.failf "malformed golden line %S" line)
    lines

let () =
  Alcotest.run "hotpath"
    [
      ( "dist_cache",
        [
          Alcotest.test_case "values" `Quick test_cache_values;
          Alcotest.test_case "stats" `Quick test_cache_stats;
          Alcotest.test_case "bounds" `Quick test_cache_bounds;
        ] );
      ( "lazy_metrics",
        [
          Alcotest.test_case "line = dense" `Quick test_lazy_line_equals_dense;
          Alcotest.test_case "euclidean = dense" `Quick
            test_lazy_euclidean_equals_dense;
          Alcotest.test_case "uniform" `Quick test_lazy_uniform;
        ] );
      ( "nearest_index",
        [ QCheck_alcotest.to_alcotest prop_index_equals_scan ] );
      ( "simulator",
        [ Alcotest.test_case "run_many = run" `Quick test_run_many_equals_run ] );
      ( "golden",
        [ Alcotest.test_case "run digests pinned" `Slow test_golden_digests ] );
    ]
