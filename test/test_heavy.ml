open Omflp_prelude
open Omflp_commodity
open Omflp_instance
open Omflp_core

let check_float tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let surcharged ~w ~n_commodities ~n_sites =
  let base = Cost_function.power_law ~n_commodities ~n_sites ~x:1.0 in
  let surcharges = Array.make n_commodities 0.0 in
  surcharges.(0) <- w;
  Cost_function.with_surcharge base ~surcharges

(* ---------- Heavy detection ---------- *)

let test_marginal () =
  let cost = surcharged ~w:10.0 ~n_commodities:4 ~n_sites:2 in
  (* Marginal of commodity 0 = sqrt4 - sqrt3 + 10; of others = sqrt4 - sqrt3. *)
  let base_marginal = 2.0 -. sqrt 3.0 in
  check_float 1e-9 "heavy marginal" (base_marginal +. 10.0)
    (Heavy.marginal cost ~commodity:0);
  check_float 1e-9 "light marginal" base_marginal (Heavy.marginal cost ~commodity:1)

let test_detect_surcharged () =
  let cost = surcharged ~w:10.0 ~n_commodities:4 ~n_sites:2 in
  let heavy = Heavy.detect cost in
  Alcotest.(check (list int)) "only commodity 0" [ 0 ] (Cset.elements heavy)

let test_detect_clean_families () =
  List.iter
    (fun x ->
      let cost = Cost_function.power_law ~n_commodities:8 ~n_sites:3 ~x in
      check_bool
        (Printf.sprintf "x=%.1f has no heavy commodities" x)
        true
        (Cset.is_empty (Heavy.detect cost)))
    [ 0.0; 1.0; 2.0 ]

let test_detect_never_everything () =
  (* Every commodity very heavy: detection must keep one light. *)
  let base = Cost_function.constant ~n_commodities:3 ~n_sites:1 ~cost:0.001 in
  let cost = Cost_function.with_surcharge base ~surcharges:[| 5.0; 7.0; 9.0 |] in
  let heavy = Heavy.detect cost in
  check_bool "not all heavy" true (Cset.cardinal heavy < 3)

(* ---------- Heavy_aware algorithm ---------- *)

let clustered_instance ~w seed =
  let rng = Splitmix.of_int seed in
  Generators.clustered rng ~clusters:2 ~per_cluster:3 ~n_requests:15
    ~n_commodities:5 ~side:30.0 ~spread:1.0
    ~cost:(fun ~n_commodities ~n_sites -> surcharged ~w ~n_commodities ~n_sites)

let test_heavy_aware_valid () =
  for seed = 0 to 10 do
    let inst = clustered_instance ~w:8.0 seed in
    let run = Simulator.run ~check:false (module Heavy_aware) inst in
    match Simulator.validate inst run with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_heavy_aware_equals_pd_when_clean () =
  (* Without heavy commodities the algorithm must coincide with PD. *)
  for seed = 0 to 5 do
    let inst = clustered_instance ~w:0.0 seed in
    let pd = Simulator.run (module Pd_omflp) inst in
    let ha = Simulator.run (module Heavy_aware) inst in
    check_float 1e-9
      (Printf.sprintf "seed %d" seed)
      (Run.total_cost pd) (Run.total_cost ha)
  done

let test_heavy_aware_avoids_surcharge_in_large () =
  let inst = clustered_instance ~w:25.0 3 in
  let t = Heavy_aware.create (Instance.env inst) in
  Array.iter (fun r -> ignore (Heavy_aware.step t r)) inst.Instance.requests;
  Alcotest.(check (list int))
    "detected commodity 0" [ 0 ]
    (Cset.elements (Heavy_aware.heavy_set t));
  (* No opened facility may bundle the heavy commodity with others. *)
  List.iter
    (fun (f : Facility.t) ->
      if Cset.mem f.offered 0 then
        check_int "heavy commodity only in singletons" 1 (Cset.cardinal f.offered))
    (Run.of_store ~algorithm:"x" (Heavy_aware.store t)).Run.facilities

let test_heavy_aware_beats_pd_on_heavy () =
  (* Not a per-instance domination (PD's large facilities can amortize the
     surcharge when the heavy commodity is demanded by many co-located
     requests), but in aggregate the fix pays. *)
  let total algo inst = Run.total_cost (Simulator.run algo inst) in
  let pd_sum = ref 0.0 and ha_sum = ref 0.0 in
  let wins = ref 0 in
  for seed = 0 to 7 do
    let inst = clustered_instance ~w:25.0 seed in
    let pd = total (module Pd_omflp) inst in
    let ha = total (module Heavy_aware) inst in
    pd_sum := !pd_sum +. pd;
    ha_sum := !ha_sum +. ha;
    if ha <= pd +. 1e-9 then incr wins
  done;
  check_bool "wins a majority" true (!wins >= 4);
  check_bool "wins in aggregate" true (!ha_sum < !pd_sum)

let test_explicit_heavy_set () =
  let inst = clustered_instance ~w:0.0 1 in
  let heavy = Cset.of_list ~n_commodities:5 [ 2; 4 ] in
  let t =
    Heavy_aware.create_with_heavy ~heavy (Instance.env inst)
  in
  Array.iter (fun r -> ignore (Heavy_aware.step t r)) inst.Instance.requests;
  check_bool "uses the given set" true (Cset.equal heavy (Heavy_aware.heavy_set t));
  (* Commodities 2 and 4 never appear in a multi-commodity facility. *)
  List.iter
    (fun (f : Facility.t) ->
      if Cset.mem f.offered 2 || Cset.mem f.offered 4 then
        check_int "singleton only" 1 (Cset.cardinal f.offered))
    (Run.of_store ~algorithm:"x" (Heavy_aware.store t)).Run.facilities

let test_all_heavy_rejected () =
  let inst = clustered_instance ~w:0.0 1 in
  Alcotest.check_raises "no light left"
    (Invalid_argument "Heavy_aware.create_with_heavy: no light commodities left")
    (fun () ->
      ignore
        (Heavy_aware.create_with_heavy
           ~heavy:(Cset.full ~n_commodities:5)
           (Instance.env inst)))

(* ---------- Cost_function.project / with_surcharge ---------- *)

let test_project_semantics () =
  let cost = Cost_function.power_law ~n_commodities:6 ~n_sites:2 ~x:1.0 in
  let keep = Cset.of_list ~n_commodities:6 [ 1; 3; 4 ] in
  let projected, map = Cost_function.project cost ~keep in
  check_int "universe" 3 (Cost_function.n_commodities projected);
  Alcotest.(check (list int)) "map" [ 1; 3; 4 ] (Array.to_list map);
  (* f'({0,2}) = f({1,4}) = sqrt 2. *)
  check_float 1e-9 "projected eval" (sqrt 2.0)
    (Cost_function.eval projected 0 (Cset.of_list ~n_commodities:3 [ 0; 2 ]));
  check_float 1e-9 "projected full = f(keep)" (sqrt 3.0)
    (Cost_function.full_cost projected 1)

let test_project_validation () =
  let cost = Cost_function.power_law ~n_commodities:4 ~n_sites:1 ~x:1.0 in
  Alcotest.check_raises "empty"
    (Invalid_argument "Cost_function.project: empty sub-universe") (fun () ->
      ignore (Cost_function.project cost ~keep:(Cset.empty ~n_commodities:4)));
  Alcotest.check_raises "wrong universe"
    (Invalid_argument "Cost_function.project: keep from wrong universe")
    (fun () ->
      ignore (Cost_function.project cost ~keep:(Cset.full ~n_commodities:5)))

let test_surcharge_semantics () =
  let cost = surcharged ~w:3.0 ~n_commodities:4 ~n_sites:1 in
  check_float 1e-9 "without heavy" (sqrt 2.0)
    (Cost_function.eval cost 0 (Cset.of_list ~n_commodities:4 [ 1; 2 ]));
  check_float 1e-9 "with heavy" (sqrt 2.0 +. 3.0)
    (Cost_function.eval cost 0 (Cset.of_list ~n_commodities:4 [ 0; 2 ]));
  (* Surcharge preserves subadditivity... *)
  (match Cost_function.check_subadditive cost with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "surcharge broke subadditivity");
  (* ...but breaks Condition 1 for large surcharges. *)
  match Cost_function.check_condition1 cost with
  | Ok () -> Alcotest.fail "expected Condition 1 violation"
  | Error _ -> ()

let prop_heavy_aware_valid_random =
  QCheck.Test.make ~name:"heavy-aware validates on random heavy instances"
    ~count:30 QCheck.small_int (fun seed ->
      let rng = Splitmix.of_int seed in
      let w = Sampler.uniform_float rng ~lo:0.0 ~hi:30.0 in
      let inst = clustered_instance ~w (seed + 500) in
      let run = Simulator.run ~check:false (module Heavy_aware) inst in
      match Simulator.validate inst run with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "heavy"
    [
      ( "detection",
        [
          Alcotest.test_case "marginal" `Quick test_marginal;
          Alcotest.test_case "detect surcharged" `Quick test_detect_surcharged;
          Alcotest.test_case "clean families" `Quick test_detect_clean_families;
          Alcotest.test_case "never everything" `Quick test_detect_never_everything;
        ] );
      ( "heavy_aware",
        [
          Alcotest.test_case "validates" `Quick test_heavy_aware_valid;
          Alcotest.test_case "equals PD when clean" `Quick
            test_heavy_aware_equals_pd_when_clean;
          Alcotest.test_case "keeps heavy out of large" `Quick
            test_heavy_aware_avoids_surcharge_in_large;
          Alcotest.test_case "ties-or-beats PD on heavy" `Quick
            test_heavy_aware_beats_pd_on_heavy;
          Alcotest.test_case "explicit heavy set" `Quick test_explicit_heavy_set;
          Alcotest.test_case "all-heavy rejected" `Quick test_all_heavy_rejected;
          QCheck_alcotest.to_alcotest prop_heavy_aware_valid_random;
        ] );
      ( "cost_extensions",
        [
          Alcotest.test_case "project semantics" `Quick test_project_semantics;
          Alcotest.test_case "project validation" `Quick test_project_validation;
          Alcotest.test_case "surcharge semantics" `Quick test_surcharge_semantics;
        ] );
    ]
